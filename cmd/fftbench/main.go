// Command fftbench regenerates the paper's 3D-FFT application-kernel
// figures (Figs 9-12): the four communication patterns (pipelined, tiled,
// windowed, window-tiled) under LibNBC (fixed linear algorithm), ADCL
// (runtime-tuned), blocking MPI, and the extended ADCL function set that may
// select the blocking algorithm.
//
// Every (scenario, flavor) cell executes on the experiment runner
// (internal/runner): -jobs parallelizes across a worker pool and -cache
// persists completed cells in the content-addressed store, so regenerating
// a figure after an interruption or a flag change only simulates the
// missing cells. Tables are assembled in scenario order regardless of
// completion order, so output is identical for every -jobs value.
//
// Example:
//
//	fftbench -fig 9                   # LibNBC vs ADCL on crill
//	fftbench -fig 11 -full -jobs 8    # extended function set vs MPI, larger scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nbctune/internal/bench"
	"nbctune/internal/fft"
	"nbctune/internal/platform"
	"nbctune/internal/runner"
)

func must(p platform.Platform, err error) platform.Platform {
	if err != nil {
		panic(err)
	}
	return p
}

func main() {
	var (
		fig      = flag.Int("fig", 0, "paper figure to regenerate: 9..12 (0 = all)")
		full     = flag.Bool("full", false, "larger process counts and iteration counts (slower)")
		csv      = flag.Bool("csv", false, "emit CSV tables")
		jobs     = flag.Int("jobs", 0, "parallel cell workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheOn  = flag.Bool("cache", false, "serve and persist cell results via the content-addressed store")
		cacheDir = flag.String("cachedir", "results/cache", "result store directory")
		resume   = flag.Bool("resume", false, "resume an interrupted figure from the store (implies -cache)")
		quiet    = flag.Bool("quiet", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	opt := bench.Parallel(*jobs, progress)
	if *cacheOn || *resume {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt.Cache = c
	}

	figs := []int{9, 10, 11, 12}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		var t *bench.Table
		var err error
		switch f {
		case 9:
			t, err = fig9(*full, opt)
		case 10:
			t, err = fig10(*full, opt)
		case 11:
			t, err = fig11(*full, opt)
		case 12:
			t, err = fig12(*full, opt)
		default:
			err = fmt.Errorf("unknown figure %d (supported: 9-12)", f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
}

// grid picks the process counts / grid size / iteration count for the FFT
// figures. The paper ran 160, 358, 500 and 1024 ranks for 350 iterations;
// scaled values keep the same per-pair message regimes.
func grid(full bool) (nps []int, n, iters int) {
	if full {
		return []int{64, 128}, 256, 100
	}
	return []int{32, 128}, 256, 40
}

func addFFTRows(t *bench.Table, spec bench.FFTSpec, rs []bench.FFTResult) {
	for _, r := range rs {
		note := ""
		if r.Winner != "" && r.Winner != r.Label {
			note = "winner=" + r.Winner
		}
		post := ""
		if r.PostLearnPerIter > 0 {
			post = bench.Ms(r.PostLearnPerIter)
		}
		t.AddRow(spec.Platform.Name, spec.Procs, spec.Pattern.String(), r.Label,
			bench.Sec(r.Total), bench.Ms(r.PerIter), post, note)
	}
}

func runMatrix(title string, plats []platform.Platform, full bool, opt bench.RunOptions, flavors ...fft.Flavor) (*bench.Table, error) {
	nps, n, iters := grid(full)
	var specs []bench.FFTSpec
	seed := int64(91)
	for _, plat := range plats {
		for _, np := range nps {
			for _, pat := range fft.Patterns {
				seed++
				specs = append(specs, bench.FFTSpec{
					Platform: plat, Procs: np, N: n, Pattern: pat,
					Iterations: iters, Seed: seed, EvalsPerFn: 2,
				})
			}
		}
	}
	matrix, err := bench.FFTMatrixOpts(specs, flavors, opt)
	if err != nil {
		return nil, err
	}
	t := bench.NewTable(title,
		"platform", "np", "pattern", "flavor", "total_s", "periter_ms", "postlearn_ms", "note")
	for i, spec := range specs {
		addFFTRows(t, spec, matrix[i])
	}
	return t, nil
}

// fig9: LibNBC vs ADCL on crill (paper: 160 and 500 procs).
func fig9(full bool, opt bench.RunOptions) (*bench.Table, error) {
	crill := must(platform.ByName("crill"))
	return runMatrix("Fig 9: 3D FFT crill — LibNBC vs ADCL per pattern",
		[]platform.Platform{crill}, full, opt, fft.FlavorNBC, fft.FlavorADCL)
}

// fig10: LibNBC vs ADCL vs blocking MPI on whale (paper: 160 and 358 procs).
func fig10(full bool, opt bench.RunOptions) (*bench.Table, error) {
	whale := must(platform.ByName("whale"))
	return runMatrix("Fig 10: 3D FFT whale — LibNBC vs ADCL vs blocking MPI",
		[]platform.Platform{whale}, full, opt, fft.FlavorNBC, fft.FlavorADCL, fft.FlavorMPI)
}

// fig11: the extended ADCL function set (including the blocking alltoall)
// vs MPI on whale and crill, with the learning phase split out.
func fig11(full bool, opt bench.RunOptions) (*bench.Table, error) {
	whale := must(platform.ByName("whale"))
	crill := must(platform.ByName("crill"))
	return runMatrix("Fig 11: 3D FFT — extended ADCL function set (incl. blocking) vs MPI; postlearn_ms excludes the learning phase",
		[]platform.Platform{whale, crill}, full, opt, fft.FlavorADCLExt, fft.FlavorMPI)
}

// fig12: the BlueGene/P-like platform (paper: 1024 procs; scaled here —
// DESIGN.md substitution 3).
func fig12(full bool, opt bench.RunOptions) (*bench.Table, error) {
	bgp := must(platform.ByName("bgp"))
	np := 128
	n := 256
	iters := 20
	if full {
		np, iters = 256, 40
	}
	var specs []bench.FFTSpec
	seed := int64(121)
	for _, pat := range fft.Patterns {
		seed++
		specs = append(specs, bench.FFTSpec{
			Platform: bgp, Procs: np, N: n, Pattern: pat,
			Iterations: iters, Seed: seed, EvalsPerFn: 2,
		})
	}
	matrix, err := bench.FFTMatrixOpts(specs, []fft.Flavor{fft.FlavorADCLExt, fft.FlavorMPI, fft.FlavorNBC}, opt)
	if err != nil {
		return nil, err
	}
	t := bench.NewTable("Fig 12: 3D FFT BlueGene/P-like — extended ADCL vs MPI vs LibNBC (scaled from 1024 ranks)",
		"platform", "np", "pattern", "flavor", "total_s", "periter_ms", "postlearn_ms", "note")
	for i, spec := range specs {
		addFFTRows(t, spec, matrix[i])
	}
	return t, nil
}
