// Command fftbench regenerates the paper's 3D-FFT application-kernel
// figures (Figs 9-12): the four communication patterns (pipelined, tiled,
// windowed, window-tiled) under LibNBC (fixed linear algorithm), ADCL
// (runtime-tuned), blocking MPI, and the extended ADCL function set that may
// select the blocking algorithm.
//
// Every (scenario, flavor) cell executes on the experiment runner
// (internal/runner): -jobs parallelizes across a worker pool and -cache
// persists completed cells in the content-addressed store, so regenerating
// a figure after an interruption or a flag change only simulates the
// missing cells. Tables are assembled in scenario order regardless of
// completion order, so output is identical for every -jobs value.
//
// Example:
//
//	fftbench -fig 9                   # LibNBC vs ADCL on crill
//	fftbench -fig 11 -full -jobs 8    # extended function set vs MPI, larger scale
//	fftbench -fig 9 -trace traces/    # per-run Perfetto timelines (sequential)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"nbctune/internal/bench"
	"nbctune/internal/chaos/profiles"
	"nbctune/internal/fft"
	"nbctune/internal/obs"
	"nbctune/internal/platform"
	"nbctune/internal/runner"
)

func must(p platform.Platform, err error) platform.Platform {
	if err != nil {
		panic(err)
	}
	return p
}

func main() {
	var (
		fig      = flag.Int("fig", 0, "paper figure to regenerate: 9..12 (0 = all)")
		full     = flag.Bool("full", false, "larger process counts and iteration counts (slower)")
		csv      = flag.Bool("csv", false, "emit CSV tables")
		jobs     = flag.Int("jobs", 0, "parallel cell workers (0 = GOMAXPROCS, 1 = sequential)")
		cacheOn  = flag.Bool("cache", false, "serve and persist cell results via the content-addressed store")
		cacheDir = flag.String("cachedir", "results/cache", "result store directory")
		resume   = flag.Bool("resume", false, "resume an interrupted figure from the store (implies -cache)")
		quiet    = flag.Bool("quiet", false, "suppress per-cell progress lines")
		trace    = flag.String("trace", "", "directory for per-run Chrome trace-event JSON (bypasses the runner; sequential)")
		metrics  = flag.String("metrics", "", "file for per-run overlap/progress metrics JSON")
		data     = flag.Bool("data", false, "run the FFT on real field data (virtual times unchanged; slower)")
		chaosStr = flag.String("chaos", "off", "fault/noise injection profile: off, "+strings.Join(profiles.Names(), ", "))
		chaosSd  = flag.Int64("chaos-seed", 1, "seed for the chaos injector's deterministic streams")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	dataMode = *data
	if _, err := profiles.ByName(*chaosStr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *chaosStr != "off" {
		chaosMode, chaosSeed = *chaosStr, *chaosSd
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}()
	}

	if *trace != "" || *metrics != "" {
		oc = &collector{traceDir: *trace}
		if *trace != "" {
			if err := os.MkdirAll(*trace, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	opt := bench.Parallel(*jobs, progress)
	if *cacheOn || *resume {
		c, err := runner.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt.Cache = c
	}

	figs := []int{9, 10, 11, 12}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		var t *bench.Table
		var err error
		switch f {
		case 9:
			t, err = fig9(*full, opt)
		case 10:
			t, err = fig10(*full, opt)
		case 11:
			t, err = fig11(*full, opt)
		case 12:
			t, err = fig12(*full, opt)
		default:
			err = fmt.Errorf("unknown figure %d (supported: 9-12)", f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	if oc != nil && *metrics != "" {
		if err := oc.writeMetrics(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics for %d runs written to %s\n", len(oc.rows), *metrics)
	}
}

// collector gathers per-run observability output when -trace/-metrics are
// given. When oc is nil the figure drivers run exactly as before (parallel,
// cached, through the experiment runner).
var oc *collector

// dataMode mirrors -data: figure drivers then run on real field data.
var dataMode bool

// chaosMode/chaosSeed mirror -chaos/-chaos-seed: when set, every cell of
// every figure runs under the named fault/noise injection profile.
var (
	chaosMode string
	chaosSeed int64
)

type collector struct {
	traceDir string
	rows     []metricsRow
}

type metricsRow struct {
	Scenario         string       `json:"scenario"`
	Flavor           string       `json:"flavor"`
	Winner           string       `json:"winner,omitempty"`
	Overlap          float64      `json:"overlap"`
	ProgressCalls    int64        `json:"progress_calls"`
	ProgressAdvanced int64        `json:"progress_advanced"`
	StallTime        float64      `json:"rendezvous_stall_time"`
	Detail           *obs.Metrics `json:"detail,omitempty"` // per-rank breakdown (-trace runs only)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, s)
}

func (c *collector) add(spec bench.FFTSpec, r bench.FFTResult, rec *obs.Recorder) error {
	row := metricsRow{
		Scenario: spec.String(), Flavor: r.Label, Winner: r.Winner,
		Overlap: r.Overlap, ProgressCalls: r.ProgressMade,
		ProgressAdvanced: r.ProgressAdvanced, StallTime: r.StallTime,
	}
	if rec != nil {
		row.Detail = rec.Metrics()
		if c.traceDir != "" {
			name := sanitize(fmt.Sprintf("%s-np%d-%s_%s", spec.Platform.Name, spec.Procs, spec.Pattern, r.Label)) + ".trace.json"
			f, err := os.Create(filepath.Join(c.traceDir, name))
			if err != nil {
				return err
			}
			if err := rec.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace written: %s\n", filepath.Join(c.traceDir, name))
		}
	}
	c.rows = append(c.rows, row)
	return nil
}

func (c *collector) writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c.rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFFTMatrix is bench.FFTMatrixOpts with observation layered in:
// with -metrics only, specs run through the runner with Observe set (the
// metric fields survive the result store); with -trace, cells run directly
// and sequentially so each run's recorder can be exported.
func runFFTMatrix(specs []bench.FFTSpec, flavors []fft.Flavor, opt bench.RunOptions) ([][]bench.FFTResult, error) {
	if dataMode {
		for i := range specs {
			specs[i].Data = true
		}
	}
	if chaosMode != "" {
		for i := range specs {
			specs[i].Chaos = chaosMode
			specs[i].ChaosSeed = chaosSeed
		}
	}
	if oc == nil {
		return bench.FFTMatrixOpts(specs, flavors, opt)
	}
	if oc.traceDir == "" {
		observed := make([]bench.FFTSpec, len(specs))
		for i, s := range specs {
			s.Observe = true
			observed[i] = s
		}
		matrix, err := bench.FFTMatrixOpts(observed, flavors, opt)
		if err != nil {
			return nil, err
		}
		for i := range matrix {
			for _, r := range matrix[i] {
				if err := oc.add(observed[i], r, nil); err != nil {
					return nil, err
				}
			}
		}
		return matrix, nil
	}
	out := make([][]bench.FFTResult, len(specs))
	for i, spec := range specs {
		out[i] = make([]bench.FFTResult, len(flavors))
		for j, fl := range flavors {
			s := spec
			s.Flavor = fl
			s.Observe = true
			r, rec, err := bench.RunFFTObserved(s)
			if err != nil {
				return nil, err
			}
			if err := oc.add(s, r, rec); err != nil {
				return nil, err
			}
			out[i][j] = r
		}
	}
	return out, nil
}

// grid picks the process counts / grid size / iteration count for the FFT
// figures. The paper ran 160, 358, 500 and 1024 ranks for 350 iterations;
// scaled values keep the same per-pair message regimes.
func grid(full bool) (nps []int, n, iters int) {
	if full {
		return []int{64, 128}, 256, 100
	}
	return []int{32, 128}, 256, 40
}

func addFFTRows(t *bench.Table, spec bench.FFTSpec, rs []bench.FFTResult) {
	for _, r := range rs {
		note := ""
		if r.Winner != "" && r.Winner != r.Label {
			note = "winner=" + r.Winner
		}
		post := ""
		if r.PostLearnPerIter > 0 {
			post = bench.Ms(r.PostLearnPerIter)
		}
		t.AddRow(spec.Platform.Name, spec.Procs, spec.Pattern.String(), r.Label,
			bench.Sec(r.Total), bench.Ms(r.PerIter), post, note)
	}
}

func runMatrix(title string, plats []platform.Platform, full bool, opt bench.RunOptions, flavors ...fft.Flavor) (*bench.Table, error) {
	nps, n, iters := grid(full)
	var specs []bench.FFTSpec
	seed := int64(91)
	for _, plat := range plats {
		for _, np := range nps {
			for _, pat := range fft.Patterns {
				seed++
				specs = append(specs, bench.FFTSpec{
					Platform: plat, Procs: np, N: n, Pattern: pat,
					Iterations: iters, Seed: seed, EvalsPerFn: 2,
				})
			}
		}
	}
	matrix, err := runFFTMatrix(specs, flavors, opt)
	if err != nil {
		return nil, err
	}
	t := bench.NewTable(title,
		"platform", "np", "pattern", "flavor", "total_s", "periter_ms", "postlearn_ms", "note")
	for i, spec := range specs {
		addFFTRows(t, spec, matrix[i])
	}
	return t, nil
}

// fig9: LibNBC vs ADCL on crill (paper: 160 and 500 procs).
func fig9(full bool, opt bench.RunOptions) (*bench.Table, error) {
	crill := must(platform.ByName("crill"))
	return runMatrix("Fig 9: 3D FFT crill — LibNBC vs ADCL per pattern",
		[]platform.Platform{crill}, full, opt, fft.FlavorNBC, fft.FlavorADCL)
}

// fig10: LibNBC vs ADCL vs blocking MPI on whale (paper: 160 and 358 procs).
func fig10(full bool, opt bench.RunOptions) (*bench.Table, error) {
	whale := must(platform.ByName("whale"))
	return runMatrix("Fig 10: 3D FFT whale — LibNBC vs ADCL vs blocking MPI",
		[]platform.Platform{whale}, full, opt, fft.FlavorNBC, fft.FlavorADCL, fft.FlavorMPI)
}

// fig11: the extended ADCL function set (including the blocking alltoall)
// vs MPI on whale and crill, with the learning phase split out.
func fig11(full bool, opt bench.RunOptions) (*bench.Table, error) {
	whale := must(platform.ByName("whale"))
	crill := must(platform.ByName("crill"))
	return runMatrix("Fig 11: 3D FFT — extended ADCL function set (incl. blocking) vs MPI; postlearn_ms excludes the learning phase",
		[]platform.Platform{whale, crill}, full, opt, fft.FlavorADCLExt, fft.FlavorMPI)
}

// fig12: the BlueGene/P-like platform (paper: 1024 procs; scaled here —
// DESIGN.md substitution 3).
func fig12(full bool, opt bench.RunOptions) (*bench.Table, error) {
	bgp := must(platform.ByName("bgp"))
	np := 128
	n := 256
	iters := 20
	if full {
		np, iters = 256, 40
	}
	var specs []bench.FFTSpec
	seed := int64(121)
	for _, pat := range fft.Patterns {
		seed++
		specs = append(specs, bench.FFTSpec{
			Platform: bgp, Procs: np, N: n, Pattern: pat,
			Iterations: iters, Seed: seed, EvalsPerFn: 2,
		})
	}
	matrix, err := runFFTMatrix(specs, []fft.Flavor{fft.FlavorADCLExt, fft.FlavorMPI, fft.FlavorNBC}, opt)
	if err != nil {
		return nil, err
	}
	t := bench.NewTable("Fig 12: 3D FFT BlueGene/P-like — extended ADCL vs MPI vs LibNBC (scaled from 1024 ranks)",
		"platform", "np", "pattern", "flavor", "total_s", "periter_ms", "postlearn_ms", "note")
	for i, spec := range specs {
		addFFTRows(t, spec, matrix[i])
	}
	return t, nil
}
