// Command benchmpi measures the MPI/NBC host-side hot path and maintains the
// committed baseline BENCH_mpi.json: message-matching throughput at several
// posted-receive depths (indexed engine vs the pre-rewrite linear scans) and
// allocations per steady-state persistent-Ibcast iteration.
//
//	benchmpi                      # measure and print
//	benchmpi -out BENCH_mpi.json  # regenerate the committed baseline
//	benchmpi -check BENCH_mpi.json# fail on >15% regression or any allocation
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"nbctune/internal/mpi"
	"nbctune/internal/nbc"
	"nbctune/internal/netmodel"
	"nbctune/internal/sim"
)

var matchDepths = []int{1, 64, 1024}

type matchResult struct {
	IndexedNsPerOp float64 `json:"indexed_ns_per_op"`
	LinearNsPerOp  float64 `json:"linear_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

type baseline struct {
	Benchmark  string `json:"benchmark"`
	Regenerate string `json:"regenerate"`
	Workload   string `json:"workload"`
	CPU        string `json:"cpu"`
	Date       string `json:"date"`
	// Keys are posted-receive depths ("1", "64", "1024"); one op is a full
	// match-and-repost cycle (irecv-side take + arrival-side match).
	Matching         map[string]matchResult `json:"matching_by_posted_depth"`
	PersistentIbcast struct {
		Workload      string  `json:"workload"`
		AllocsPerIter float64 `json:"allocs_per_iteration"`
	} `json:"persistent_ibcast"`
}

func main() {
	out := flag.String("out", "", "write the measured baseline to this file")
	check := flag.String("check", "", "compare against the committed baseline in this file")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measurement time per matching configuration")
	flag.Parse()

	b := measureAll(*benchtime)

	if *check != "" {
		committed, err := readBaseline(*check)
		if err != nil {
			fatal(err)
		}
		if err := compare(committed, b); err != nil {
			fatal(err)
		}
		fmt.Printf("benchmpi: within 15%% of %s (1024-deep indexed %.0f ns/op, %.1fx over linear, %.0f allocs/iter)\n",
			*check, b.Matching["1024"].IndexedNsPerOp, b.Matching["1024"].Speedup, b.PersistentIbcast.AllocsPerIter)
		return
	}

	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchmpi: wrote %s\n", *out)
		return
	}
	os.Stdout.Write(enc)
}

func measureAll(benchtime time.Duration) baseline {
	b := baseline{
		Benchmark:  "mpi matching + persistent nbc steady state",
		Regenerate: "make bench  (or: go run ./cmd/benchmpi -out BENCH_mpi.json)",
		Workload: "one op = one match-and-repost cycle against k posted receives " +
			"(rotating src/tag so every cycle hits a different bucket)",
		CPU:      cpuModel(),
		Date:     time.Now().Format("2006-01-02"),
		Matching: make(map[string]matchResult, len(matchDepths)),
	}
	for _, k := range matchDepths {
		idx := measureMatch(k, true, benchtime)
		lin := measureMatch(k, false, benchtime)
		b.Matching[fmt.Sprint(k)] = matchResult{
			IndexedNsPerOp: idx,
			LinearNsPerOp:  lin,
			Speedup:        lin / idx,
		}
	}
	b.PersistentIbcast.Workload = "Ibcast n=4 virtual 32KiB seg 8KiB, one full Start..Wait iteration, warm pools"
	b.PersistentIbcast.AllocsPerIter = persistentAllocs()
	return b
}

// measureMatch returns ns per match-and-repost cycle with k receives posted.
func measureMatch(k int, indexed bool, benchtime time.Duration) float64 {
	mb := mpi.NewMatchBench(k, indexed)
	mb.RunCycles(4 * k) // warm buckets and free lists
	n := 256
	for {
		start := time.Now()
		mb.RunCycles(n)
		el := time.Since(start)
		if el >= benchtime {
			return float64(el.Nanoseconds()) / float64(n)
		}
		// Scale toward the target with 20% headroom, at least doubling.
		next := int(float64(n) * 1.2 * float64(benchtime) / float64(el+1))
		if next < 2*n {
			next = 2 * n
		}
		n = next
	}
}

// persistentAllocs builds a 4-rank world whose rank programs park on a gate
// between persistent-Ibcast iterations, warms every pool, then measures
// allocations per released iteration (the steady state a tuning sweep lives
// in). The parameters mirror the nbc conformance fabric.
func persistentAllocs() float64 {
	const n = 4
	eng := sim.NewEngine(1)
	nodeOf := make([]int, n)
	for i := range nodeOf {
		nodeOf[i] = i
	}
	p := netmodel.Params{
		Name:          "bench-ib",
		Latency:       2e-6,
		Bandwidth:     1.5e9,
		NICs:          1,
		OSend:         1e-6,
		ORecv:         1e-6,
		OPost:         2e-7,
		OProgress:     5e-7,
		OTest:         5e-8,
		EagerLimit:    12 * 1024,
		RDMA:          true,
		CtrlBytes:     64,
		CopyBandwidth: 4e9,
		ShmLatency:    4e-7,
		ShmBandwidth:  5e9,
		IncastK:       8,
		IncastBeta:    0.02,
	}
	net, err := netmodel.New(eng, p, nodeOf)
	if err != nil {
		fatal(err)
	}
	w := mpi.NewWorld(eng, net, n, mpi.Options{Seed: 3})
	gate := sim.NewCond(eng)
	released := 0
	w.Start(func(c *mpi.Comm) {
		sched := nbc.Ibcast(n, c.Rank(), 0, mpi.Virtual(32*1024), 2, 8*1024)
		it := 0
		for {
			for released <= it {
				gate.Wait(c.RankState().Proc())
			}
			nbc.Run(c, sched)
			it++
		}
	})
	deadline := 0.0
	step := func() {
		released++
		gate.Broadcast()
		deadline += 1.0
		eng.RunUntil(deadline)
	}
	for i := 0; i < 50; i++ {
		step()
	}
	return testing.AllocsPerRun(200, step)
}

func compare(committed, now baseline) error {
	for _, k := range matchDepths {
		key := fmt.Sprint(k)
		base, ok := committed.Matching[key]
		if !ok {
			return fmt.Errorf("baseline has no matching entry for depth %s", key)
		}
		got := now.Matching[key]
		if limit := base.IndexedNsPerOp * 1.15; got.IndexedNsPerOp > limit {
			return fmt.Errorf("depth %s: indexed matching %.0f ns/op exceeds 115%% of committed %.0f ns/op",
				key, got.IndexedNsPerOp, base.IndexedNsPerOp)
		}
	}
	// Acceptance pin: indexed matching must stay >=5x over the linear scans
	// at 1024 posted receives. A same-machine ratio, so robust to noise.
	if got := now.Matching["1024"].Speedup; got < 5 {
		return fmt.Errorf("1024-deep matching speedup %.2fx over linear, want >= 5x", got)
	}
	if a := now.PersistentIbcast.AllocsPerIter; a != 0 {
		return fmt.Errorf("steady-state persistent Ibcast iteration allocates (%v allocs/iter, want 0)", a)
	}
	return nil
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return "unknown"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmpi:", err)
	os.Exit(1)
}
