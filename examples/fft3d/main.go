// fft3d: the paper's application kernel — a slab-decomposed 3D FFT whose
// transpose runs over auto-tuned non-blocking all-to-all operations, here
// with real data so the numerics are verifiable end to end.
//
// The example runs the window-tiled pattern under three back ends (blocking
// MPI, LibNBC's fixed linear algorithm, ADCL runtime tuning), validates the
// result against a forward+inverse round trip, and reports the virtual
// execution times.
//
// Run with: go run ./examples/fft3d
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"nbctune/internal/fft"
	"nbctune/internal/mpi"
	"nbctune/internal/platform"
)

func main() {
	const (
		N     = 32 // grid points per dimension
		P     = 8  // ranks
		iters = 12
	)
	plat, err := platform.ByName("whale")
	if err != nil {
		log.Fatal(err)
	}

	for _, flavor := range []fft.Flavor{fft.FlavorMPI, fft.FlavorNBC, fft.FlavorADCL} {
		eng, world, err := plat.NewWorld(P, 7)
		if err != nil {
			log.Fatal(err)
		}
		var loopTime float64
		var winner string
		var maxErr float64
		world.Start(func(c *mpi.Comm) {
			pl, err := fft.NewPlan(c, fft.Config{
				N:        N,
				Pattern:  fft.WindowTiled,
				Flavor:   flavor,
				FlopRate: plat.FlopRate,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Fill this rank's slab with deterministic pseudo-random data.
			rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
			orig := make([]complex128, len(pl.Slab()))
			for i := range orig {
				orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}

			c.Barrier()
			t0 := c.Now()
			for it := 0; it < iters; it++ {
				copy(pl.Slab(), orig)
				if err := pl.Forward(); err != nil {
					log.Fatal(err)
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				loopTime = c.Now() - t0
				if _, name := pl.Decided(); name != "" {
					winner = name
				}
			}
			// Validate numerics: forward then inverse must return the input.
			copy(pl.Slab(), orig)
			if err := pl.Forward(); err != nil {
				log.Fatal(err)
			}
			if err := pl.Inverse(); err != nil {
				log.Fatal(err)
			}
			for i := range orig {
				if e := cmplx.Abs(pl.Slab()[i] - orig[i]); e > maxErr {
					maxErr = e
				}
			}
		})
		eng.Run()
		fmt.Printf("%-8s %2d iterations of %d^3 FFT on %d ranks: %8.3fs virtual  (winner=%s, roundtrip err=%.2e)\n",
			flavor, iters, N, P, loopTime, winner, maxErr)
	}
}
