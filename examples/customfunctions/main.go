// customfunctions: the low-level ADCL interface. Applications can register
// their own implementations of a communication pattern as a function set and
// reuse ADCL's runtime selection, statistical filtering, and historic
// learning — without the pattern being a built-in collective.
//
// Here a 2D halo exchange (the Cartesian neighborhood communication ADCL was
// originally built for) is implemented three ways — blocking sendrecv
// ordered by dimension, all non-blocking with a single waitall, and
// pairwise-ordered — and tuned at runtime. The tuned winner is then stored
// in a history file so a later run skips the learning phase entirely.
//
// Run with: go run ./examples/customfunctions
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nbctune/internal/core"
	"nbctune/internal/mpi"
	"nbctune/internal/platform"
)

const (
	gridW, gridH = 4, 4 // 16 ranks in a 4x4 periodic grid
	haloBytes    = 32 * 1024
	iters        = 30
)

// neighbors returns the four neighbor ranks of rank r in the periodic grid.
func neighbors(r int) (left, right, up, down int) {
	x, y := r%gridW, r/gridW
	left = y*gridW + (x-1+gridW)%gridW
	right = y*gridW + (x+1)%gridW
	up = ((y-1+gridH)%gridH)*gridW + x
	down = ((y+1)%gridH)*gridW + x
	return
}

// haloSet builds a user-defined function set with three halo-exchange
// implementations.
func haloSet(c *mpi.Comm) *core.FunctionSet {
	left, right, up, down := neighbors(c.Rank())
	const tag = 7
	halo := mpi.Virtual(haloBytes)

	blockingByDim := core.CustomFunction("blocking-by-dimension", []int{0}, func() core.Started {
		c.Sendrecv(right, tag, halo, left, tag, halo)
		c.Sendrecv(left, tag, halo, right, tag, halo)
		c.Sendrecv(down, tag, halo, up, tag, halo)
		c.Sendrecv(up, tag, halo, down, tag, halo)
		return nil
	})
	allNonBlocking := core.CustomFunction("isend-irecv-waitall", []int{1}, func() core.Started {
		var reqs []*mpi.Request
		for _, src := range []int{left, right, up, down} {
			reqs = append(reqs, c.Irecv(src, tag, halo))
		}
		for _, dst := range []int{left, right, up, down} {
			reqs = append(reqs, c.Isend(dst, tag, halo))
		}
		return &waitallOp{c: c, reqs: reqs}
	})
	orderedPairs := core.CustomFunction("ordered-pairwise", []int{2}, func() core.Started {
		c.Sendrecv(right, tag, halo, left, tag, halo)
		c.Sendrecv(down, tag, halo, up, tag, halo)
		c.Sendrecv(left, tag, halo, right, tag, halo)
		c.Sendrecv(up, tag, halo, down, tag, halo)
		return nil
	})

	fs, err := core.NewFunctionSet("halo2d",
		&core.AttributeSet{Attrs: []core.Attribute{{Name: "strategy", Values: []int{0, 1, 2}}}},
		blockingByDim, allNonBlocking, orderedPairs)
	if err != nil {
		log.Fatal(err)
	}
	return fs
}

// waitallOp adapts a set of point-to-point requests to ADCL's Started
// interface.
type waitallOp struct {
	c    *mpi.Comm
	reqs []*mpi.Request
}

func (w *waitallOp) Progress() bool { return w.c.Test(w.reqs...) }
func (w *waitallOp) Wait()          { w.c.Wait(w.reqs...) }

func runOnce(histPath string) (winner string, evals int) {
	plat, err := platform.ByName("whale")
	if err != nil {
		log.Fatal(err)
	}
	eng, world, err := plat.NewWorld(gridW*gridH, 3)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := core.LoadHistory(histPath)
	if err != nil {
		log.Fatal(err)
	}
	key := core.HistoryKey("halo2d", plat.Name, gridW*gridH, haloBytes)

	world.Start(func(c *mpi.Comm) {
		fs := haloSet(c)
		sel, hit := core.SelectorWithHistory(hist, key, fs, core.NewBruteForce(len(fs.Fns), 3))
		if c.Rank() == 0 && hit {
			fmt.Println("  history hit: skipping the learning phase")
		}
		req := core.MustRequest(fs, sel, c.Now)
		timer := core.MustTimer(c.Now, req)
		for it := 0; it < iters; it++ {
			timer.Start()
			req.Init()
			c.Compute(2e-3)
			req.Progress()
			req.Wait()
			core.StopMaybeSynced(c, timer, req)
		}
		if c.Rank() == 0 {
			winner = req.Winner().Name
			evals = req.Selector().Evals()
		}
	})
	eng.Run()

	hist.Record(key, core.HistoryEntry{Winner: winner, Evals: evals})
	if err := hist.Save(histPath); err != nil {
		log.Fatal(err)
	}
	return winner, evals
}

func main() {
	dir, err := os.MkdirTemp("", "adcl-history")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	histPath := filepath.Join(dir, "history.json")

	fmt.Println("first run (cold, learns at runtime):")
	w1, e1 := runOnce(histPath)
	fmt.Printf("  winner=%s after %d measurements\n", w1, e1)

	fmt.Println("second run (warm, historic learning):")
	w2, e2 := runOnce(histPath)
	fmt.Printf("  winner=%s after %d measurements\n", w2, e2)

	if w1 != w2 || e2 != 0 {
		log.Fatalf("historic learning failed: %s/%d vs %s/%d", w1, e1, w2, e2)
	}
}
