// progresstuning: demonstrates the paper's central observation about the
// progress problem (§III-C, Figs 6-7): how often the application calls into
// the communication library decides both how much overlap a non-blocking
// collective achieves and WHICH algorithm is best.
//
// The example runs the overlap micro-benchmark for each Ialltoall algorithm
// across a range of progress-call counts on the simulated crill cluster and
// prints the resulting matrix: with a single progress call the structured
// pairwise exchange wins, with a handful the linear algorithm overlaps
// fully, and with thousands the progress overhead itself starts to hurt.
//
// Run with: go run ./examples/progresstuning
package main

import (
	"fmt"
	"log"

	"nbctune/internal/bench"
	"nbctune/internal/platform"
)

func main() {
	plat, err := platform.ByName("crill")
	if err != nil {
		log.Fatal(err)
	}
	progressCounts := []int{1, 2, 5, 10, 100, 1000}

	fmt.Println("Ialltoall on crill, 32 ranks, 128KB per pair, 100ms compute per iteration")
	fmt.Printf("%-10s", "progress")
	names := bench.MicroSpec{Platform: plat, Procs: 2, MsgSize: 1, Op: bench.OpIalltoall}.FunctionNames()
	for _, n := range names {
		fmt.Printf("  %-24s", n)
	}
	fmt.Println("  best")

	for _, pc := range progressCounts {
		spec := bench.MicroSpec{
			Platform: plat, Procs: 32, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
			ComputePerIter: 0.1, Iterations: 15, ProgressCalls: pc, Seed: 9,
		}
		rs, err := bench.RunAllFixed(spec)
		if err != nil {
			log.Fatal(err)
		}
		best := 0
		fmt.Printf("%-10d", pc)
		for i, r := range rs {
			if r.Total < rs[best].Total {
				best = i
			}
			fmt.Printf("  %-24s", fmt.Sprintf("%.2f ms/iter", r.PerIter*1000))
		}
		fmt.Printf("  %s\n", rs[best].Impl)
	}

	fmt.Println()
	fmt.Println("Auto-tuning picks the right algorithm for each regime:")
	for _, pc := range []int{1, 10} {
		spec := bench.MicroSpec{
			Platform: plat, Procs: 32, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
			ComputePerIter: 0.1, Iterations: 20, ProgressCalls: pc, Seed: 9,
		}
		r, err := bench.RunADCL(spec, "brute-force")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d progress call(s): ADCL selected %s after %d measurements\n",
			pc, r.Winner, r.Evals)
	}
}
