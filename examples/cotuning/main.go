// cotuning: the paper's future-work extension, implemented — one ADCL timer
// co-tuning several operations inside one code region.
//
// A time step of a made-up solver performs an all-to-all (transpose), some
// computation, and an allreduce (convergence check). Both operations are
// persistent ADCL requests attached to a single timer that brackets the
// whole step. The requests have separate selectors; the timer feeds
// measurements to one still-learning selector at a time (sequential
// co-tuning), so one operation's exploration never confounds the other's.
//
// Run with: go run ./examples/cotuning
package main

import (
	"fmt"
	"log"

	"nbctune/internal/core"
	"nbctune/internal/mpi"
	"nbctune/internal/platform"
)

func main() {
	plat, err := platform.ByName("crill")
	if err != nil {
		log.Fatal(err)
	}
	const (
		np    = 16
		iters = 40
	)
	eng, world, err := plat.NewWorld(np, 11)
	if err != nil {
		log.Fatal(err)
	}

	world.Start(func(c *mpi.Comm) {
		transpose := core.IalltoallSet(c, mpi.Virtual(np*64*1024), mpi.Virtual(np*64*1024), false)
		residual := core.IallreduceSet(c, mpi.Virtual(8*1024), mpi.Virtual(8*1024), nil)
		reqT := core.MustRequest(transpose, core.NewBruteForce(len(transpose.Fns), 3), c.Now)
		reqR := core.MustRequest(residual, core.NewBruteForce(len(residual.Fns), 3), c.Now)
		timer := core.MustTimer(c.Now, reqT, reqR)

		for it := 0; it < iters; it++ {
			timer.Start()

			reqT.Init() // start the transpose
			for k := 0; k < 4; k++ {
				c.Compute(2e-3) // overlap the stencil update
				reqT.Progress()
			}
			reqT.Wait()

			reqR.Init()     // start the convergence allreduce
			c.Compute(1e-3) // overlap the local residual computation
			reqR.Progress()
			reqR.Wait()

			core.StopMaybeSynced(c, timer, reqT, reqR)

			if c.Rank() == 0 && it == iters-1 {
				fmt.Printf("after %d steps:\n", iters)
				for _, rq := range []*core.Request{reqT, reqR} {
					if w := rq.Winner(); w != nil {
						fmt.Printf("  %-12s -> %-32s (decided at t=%.3fs, %d measurements)\n",
							rq.FunctionSet().Name, w.Name, rq.DecidedAt(), rq.Selector().Evals())
					} else {
						fmt.Printf("  %-12s -> still learning\n", rq.FunctionSet().Name)
					}
				}
			}
		}
	})
	eng.Run()
	fmt.Println("co-tuning finished: the timer tuned both operations sequentially inside one region")
}
