// Quickstart: auto-tune a non-blocking all-to-all on a simulated cluster.
//
// This is the smallest end-to-end use of the library: build a platform,
// start an MPI world, create an ADCL persistent request over the Ialltoall
// function set, and run the paper's benchmark loop (init, compute with
// progress calls, wait) until the runtime selection locks in a winner.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nbctune/internal/core"
	"nbctune/internal/mpi"
	"nbctune/internal/platform"
)

func main() {
	plat, err := platform.ByName("crill")
	if err != nil {
		log.Fatal(err)
	}
	const (
		nprocs  = 16
		msgSize = 128 * 1024 // bytes per rank pair
		iters   = 25
	)
	eng, world, err := plat.NewWorld(nprocs, 42)
	if err != nil {
		log.Fatal(err)
	}

	world.Start(func(c *mpi.Comm) {
		// The function set holds the three Ialltoall algorithms; virtual
		// buffers mean timing-only payloads.
		fs := core.IalltoallSet(c, mpi.Virtual(nprocs*msgSize), mpi.Virtual(nprocs*msgSize), false)
		req := core.MustRequest(fs, core.NewBruteForce(len(fs.Fns), 3), c.Now)
		timer := core.MustTimer(c.Now, req)

		for it := 0; it < iters; it++ {
			timer.Start()
			req.Init() // start the non-blocking collective
			for k := 0; k < 5; k++ {
				c.Compute(10e-3) // 10ms of application work
				req.Progress()   // drive the library's progress engine
			}
			req.Wait()
			core.StopMaybeSynced(c, timer, req) // record; keeps ranks in lockstep
		}

		if c.Rank() == 0 {
			w := req.Winner()
			fmt.Printf("rank 0: tuned %q over %d implementations\n", fs.Name, len(fs.Fns))
			fmt.Printf("rank 0: winner = %s (decided at t=%.3fs after %d measurements)\n",
				w.Name, req.DecidedAt(), req.Selector().Evals())
		}
	})
	end := eng.Run()
	fmt.Printf("simulation finished at virtual t=%.3fs\n", end)
}
