module nbctune

go 1.22
