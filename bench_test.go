// Package nbctune_test holds the repository-level benchmark suite: one
// benchmark per table/figure of the paper's evaluation (see DESIGN.md §5 for
// the experiment index) plus ablation benchmarks for the design choices the
// library makes. The configurations here are scaled down so the whole suite
// runs in a few minutes; the cmd/ drivers regenerate the figures at full
// simulation scale.
//
// Every benchmark reports the *virtual* execution time of the simulated
// scenario via custom metrics (vsec_* = virtual seconds); the Go ns/op
// number only measures how fast the simulator itself runs.
package nbctune_test

import (
	"testing"

	"nbctune/internal/bench"
	"nbctune/internal/core"
	"nbctune/internal/fft"
	"nbctune/internal/platform"
	"nbctune/internal/stats"
)

func plat(b *testing.B, name string) platform.Platform {
	b.Helper()
	p, err := platform.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// ---------------------------------------------------------------------------
// E1 / Fig 2: verification runs — every fixed Ialltoall implementation plus
// the ADCL selections on one scenario.

func BenchmarkFig2_VerificationIalltoall(b *testing.B) {
	spec := bench.MicroSpec{
		Platform: plat(b, "crill"), Procs: 16, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
		ComputePerIter: 0.05, Iterations: 16, ProgressCalls: 5, Seed: 21, EvalsPerFn: 2,
	}
	for i := 0; i < b.N; i++ {
		v, err := bench.RunVerification(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v.Fixed[v.Best].Total, "vsec_best_fixed")
		b.ReportMetric(v.ADCL[0].Total, "vsec_adcl_bruteforce")
	}
}

func BenchmarkFig2_VerificationIbcast(b *testing.B) {
	spec := bench.MicroSpec{
		Platform: plat(b, "whale"), Procs: 8, MsgSize: 2 * 1024 * 1024, Op: bench.OpIbcast,
		ComputePerIter: 0.02, Iterations: 48, ProgressCalls: 5, Seed: 22, EvalsPerFn: 2,
	}
	for i := 0; i < b.N; i++ {
		v, err := bench.RunVerification(spec, "attr-heuristic")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v.Fixed[v.Best].Total, "vsec_best_fixed")
		b.ReportMetric(v.ADCL[0].Total, "vsec_adcl_heuristic")
	}
}

// ---------------------------------------------------------------------------
// E2 / Fig 3: network influence — whale (InfiniBand) vs whale-tcp (GigE).

func benchFig3(b *testing.B, platName string) {
	spec := bench.MicroSpec{
		Platform: plat(b, platName), Procs: 16, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
		ComputePerIter: 0.05, Iterations: 15, ProgressCalls: 5, Seed: 31,
	}
	for i := 0; i < b.N; i++ {
		rs, err := bench.RunAllFixed(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			b.ReportMetric(r.Total, "vsec_"+r.Impl)
		}
	}
}

func BenchmarkFig3_WhaleIB(b *testing.B)  { benchFig3(b, "whale") }
func BenchmarkFig3_WhaleTCP(b *testing.B) { benchFig3(b, "whale-tcp") }

// ---------------------------------------------------------------------------
// E3 / Fig 4: message-size influence on crill (1KB vs 128KB per pair).

func benchFig4(b *testing.B, msg int, np int, compute float64) {
	spec := bench.MicroSpec{
		Platform: plat(b, "crill"), Procs: np, MsgSize: msg, Op: bench.OpIalltoall,
		ComputePerIter: compute, Iterations: 10, ProgressCalls: 5, Seed: 41,
	}
	for i := 0; i < b.N; i++ {
		rs, err := bench.RunAllFixed(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			b.ReportMetric(r.PerIter*1e3, "vms_"+r.Impl)
		}
	}
}

func BenchmarkFig4_Msg1KB(b *testing.B)   { benchFig4(b, 1024, 64, 1e-3) }
func BenchmarkFig4_Msg128KB(b *testing.B) { benchFig4(b, 128*1024, 32, 1e-2) }

// ---------------------------------------------------------------------------
// E4 / Fig 5: process-count influence on whale (1KB, 100 progress calls).

func benchFig5(b *testing.B, np int) {
	spec := bench.MicroSpec{
		Platform: plat(b, "whale"), Procs: np, MsgSize: 1024, Op: bench.OpIalltoall,
		ComputePerIter: 1e-3, Iterations: 15, ProgressCalls: 100, Seed: 51,
	}
	for i := 0; i < b.N; i++ {
		rs, err := bench.RunAllFixed(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			b.ReportMetric(r.PerIter*1e3, "vms_"+r.Impl)
		}
	}
}

func BenchmarkFig5_NP16(b *testing.B) { benchFig5(b, 16) }
func BenchmarkFig5_NP64(b *testing.B) { benchFig5(b, 64) }

// ---------------------------------------------------------------------------
// E5 / Fig 6: progress-call overhead for a small Ibcast.

func BenchmarkFig6_ProgressOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pc := range []int{1, 10, 1000} {
			spec := bench.MicroSpec{
				Platform: plat(b, "whale"), Procs: 16, MsgSize: 1024, Op: bench.OpIbcast,
				ComputePerIter: 5e-3, Iterations: 15, ProgressCalls: pc, Seed: 61,
			}
			r, err := bench.RunFixed(spec, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.PerIter*1e3, "vms_progress_"+itoa(pc))
		}
	}
}

// ---------------------------------------------------------------------------
// E6 / Fig 7: the progress-call crossover (pairwise wins at 1 call, linear
// at several).

func BenchmarkFig7_ProgressCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pc := range []int{1, 10} {
			spec := bench.MicroSpec{
				Platform: plat(b, "crill"), Procs: 32, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
				ComputePerIter: 0.1, Iterations: 10, ProgressCalls: pc, Seed: 71,
			}
			rs, err := bench.RunAllFixed(spec)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rs {
				b.ReportMetric(r.PerIter*1e3, "vms_p"+itoa(pc)+"_"+r.Impl)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// E7 / §IV-A statistic: correct-decision rate over a small verification
// sweep.

func BenchmarkVerificationSweep(b *testing.B) {
	crill := plat(b, "crill")
	whaletcp := plat(b, "whale-tcp")
	specs := []bench.MicroSpec{
		{Platform: crill, Procs: 8, MsgSize: 1024, Op: bench.OpIalltoall,
			ComputePerIter: 2e-3, Iterations: 20, ProgressCalls: 5, Seed: 81, EvalsPerFn: 3},
		{Platform: crill, Procs: 8, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
			ComputePerIter: 5e-2, Iterations: 20, ProgressCalls: 5, Seed: 82, EvalsPerFn: 3},
		{Platform: whaletcp, Procs: 8, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
			ComputePerIter: 5e-2, Iterations: 20, ProgressCalls: 5, Seed: 83, EvalsPerFn: 3},
	}
	for i := 0; i < b.N; i++ {
		st, err := bench.VerificationSweep(specs, []string{"brute-force", "attr-heuristic"}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.Rate("brute-force")*100, "correct_pct_bruteforce")
		b.ReportMetric(st.Rate("attr-heuristic")*100, "correct_pct_heuristic")
	}
}

// BenchmarkVerificationSweepParallel is the same sweep on the experiment
// runner with a GOMAXPROCS worker pool — the speedup over
// BenchmarkVerificationSweep is the runner's parallel efficiency on this
// machine (scenarios are independent simulations, so it should be
// near-linear in cores).
func BenchmarkVerificationSweepParallel(b *testing.B) {
	crill := plat(b, "crill")
	whaletcp := plat(b, "whale-tcp")
	specs := []bench.MicroSpec{
		{Platform: crill, Procs: 8, MsgSize: 1024, Op: bench.OpIalltoall,
			ComputePerIter: 2e-3, Iterations: 20, ProgressCalls: 5, Seed: 81, EvalsPerFn: 3},
		{Platform: crill, Procs: 8, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
			ComputePerIter: 5e-2, Iterations: 20, ProgressCalls: 5, Seed: 82, EvalsPerFn: 3},
		{Platform: whaletcp, Procs: 8, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
			ComputePerIter: 5e-2, Iterations: 20, ProgressCalls: 5, Seed: 83, EvalsPerFn: 3},
	}
	for i := 0; i < b.N; i++ {
		st, err := bench.VerificationSweepOpts(specs, []string{"brute-force", "attr-heuristic"},
			bench.Parallel(0, nil))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.Rate("brute-force")*100, "correct_pct_bruteforce")
	}
}

// ---------------------------------------------------------------------------
// E8-E11 / Figs 9-12: the 3D-FFT application kernel.

func benchFFT(b *testing.B, platName string, np, n int, pattern fft.Pattern,
	place platform.Placement, flavors ...fft.Flavor) {
	spec := bench.FFTSpec{
		Platform: plat(b, platName), Procs: np, N: n, Pattern: pattern,
		Iterations: 15, Seed: 91, EvalsPerFn: 2, Placement: place, ProgressPerTile: 1,
	}
	for i := 0; i < b.N; i++ {
		rs, err := bench.FFTComparison(spec, flavors...)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			b.ReportMetric(r.Total, "vsec_"+r.Label)
		}
	}
}

func BenchmarkFig9_FFTCrill_NBCvsADCL(b *testing.B) {
	benchFFT(b, "crill", 16, 64, fft.Tiled, platform.Block, fft.FlavorNBC, fft.FlavorADCL)
}

func BenchmarkFig10_FFTWhale_NBCvsADCLvsMPI(b *testing.B) {
	benchFFT(b, "whale", 16, 64, fft.WindowTiled, platform.Block,
		fft.FlavorNBC, fft.FlavorADCL, fft.FlavorMPI)
}

func BenchmarkFig11_FFTExtendedSetVsMPI(b *testing.B) {
	benchFFT(b, "whale", 16, 64, fft.Tiled, platform.Block,
		fft.FlavorADCLExt, fft.FlavorMPI)
}

func BenchmarkFig12_FFTBlueGene(b *testing.B) {
	benchFFT(b, "bgp", 32, 64, fft.WindowTiled, platform.Cyclic,
		fft.FlavorADCLExt, fft.FlavorMPI, fft.FlavorNBC)
}

// ---------------------------------------------------------------------------
// E12 / §IV-B statistic: ADCL vs LibNBC over a small FFT sweep.

func BenchmarkFFTSweep(b *testing.B) {
	crill := plat(b, "crill")
	whale := plat(b, "whale")
	// One scenario from the contention regime (where ADCL's pairwise pick
	// beats LibNBC's fixed linear algorithm) and one linear-friendly one.
	specs := []bench.FFTSpec{
		{Platform: whale, Procs: 64, N: 256, Pattern: fft.Tiled, Iterations: 20,
			Seed: 101, EvalsPerFn: 2, Placement: platform.Block, ProgressPerTile: 1},
		{Platform: crill, Procs: 32, N: 128, Pattern: fft.Pipelined, Iterations: 15,
			Seed: 102, EvalsPerFn: 2, Placement: platform.Block, ProgressPerTile: 1},
	}
	for i := 0; i < b.N; i++ {
		st, err := bench.FFTSweep(specs, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.FasterRate()*100, "adcl_faster_pct")
		b.ReportMetric(st.MaxImprovement*100, "max_improvement_pct")
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §7).

// Ablation 1: statistical outlier filtering. On a noisy platform, scoring by
// plain mean instead of the outlier-filtered mean degrades tuning decisions.
func BenchmarkAblation_OutlierFilter(b *testing.B) {
	spec := bench.MicroSpec{
		Platform: plat(b, "crill"), Procs: 8, MsgSize: 64 * 1024, Op: bench.OpIalltoall,
		ComputePerIter: 5e-3, Iterations: 24, ProgressCalls: 4, Seed: 3, EvalsPerFn: 5,
	}
	for i := 0; i < b.N; i++ {
		withFilter, err := bench.RunADCL(spec, "brute-force")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(withFilter.PostLearnPerIter*1e3, "vms_periter_filtered")
	}
}

// Ablation 2: attribute heuristic vs brute force learning cost on the
// 21-implementation Ibcast set.
func BenchmarkAblation_HeuristicLearningCost(b *testing.B) {
	spec := bench.MicroSpec{
		Platform: plat(b, "whale"), Procs: 8, MsgSize: 2 * 1024 * 1024, Op: bench.OpIbcast,
		ComputePerIter: 0.02, Iterations: 48, ProgressCalls: 5, Seed: 5, EvalsPerFn: 2,
	}
	for i := 0; i < b.N; i++ {
		bf, err := bench.RunADCL(spec, "brute-force")
		if err != nil {
			b.Fatal(err)
		}
		h, err := bench.RunADCL(spec, "attr-heuristic")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(bf.Evals), "evals_bruteforce")
		b.ReportMetric(float64(h.Evals), "evals_heuristic")
		b.ReportMetric(bf.Total, "vsec_bruteforce")
		b.ReportMetric(h.Total, "vsec_heuristic")
	}
}

// Ablation 3: historic learning — a warm run skips the learning phase.
func BenchmarkAblation_HistoricLearning(b *testing.B) {
	spec := bench.MicroSpec{
		Platform: plat(b, "crill"), Procs: 8, MsgSize: 64 * 1024, Op: bench.OpIalltoall,
		ComputePerIter: 5e-3, Iterations: 24, ProgressCalls: 4, Seed: 7, EvalsPerFn: 4,
	}
	for i := 0; i < b.N; i++ {
		cold, err := bench.RunADCL(spec, "brute-force")
		if err != nil {
			b.Fatal(err)
		}
		// Warm: run pinned to the previously learned winner.
		idx := -1
		for j, name := range spec.FunctionNames() {
			if name == cold.Winner {
				idx = j
			}
		}
		warm, err := bench.RunFixed(spec, idx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cold.Total, "vsec_cold")
		b.ReportMetric(warm.Total, "vsec_warm")
	}
}

// Ablation 4: the rendezvous eager limit moves the progress-call cliffs.
func BenchmarkAblation_EagerLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, limit := range []int{4 * 1024, 16 * 1024, 256 * 1024} {
			p := plat(b, "crill")
			p.Net.EagerLimit = limit
			spec := bench.MicroSpec{
				Platform: p, Procs: 16, MsgSize: 64 * 1024, Op: bench.OpIalltoall,
				ComputePerIter: 1e-2, Iterations: 10, ProgressCalls: 1, Seed: 11,
			}
			r, err := bench.RunFixed(spec, 0) // linear
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.PerIter*1e3, "vms_eager_"+itoa(limit/1024)+"k")
		}
	}
}

// Ablation 5: Ibcast segment-size sensitivity (the second attribute of the
// paper's Ibcast function set).
func BenchmarkAblation_SegmentSize(b *testing.B) {
	names := bench.MicroSpec{Platform: plat(b, "whale"), Procs: 2, MsgSize: 1, Op: bench.OpIbcast}.FunctionNames()
	for i := 0; i < b.N; i++ {
		spec := bench.MicroSpec{
			Platform: plat(b, "whale"), Procs: 8, MsgSize: 2 * 1024 * 1024, Op: bench.OpIbcast,
			ComputePerIter: 0.02, Iterations: 10, ProgressCalls: 5, Seed: 13,
		}
		// chain variants are indices of names containing "chain".
		for idx, name := range names {
			if len(name) >= 12 && name[7:12] == "chain" {
				r, err := bench.RunFixed(spec, idx)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.PerIter*1e3, "vms_"+name)
			}
		}
	}
}

// Ablation 6: process arrival patterns (Faraj et al., paper §I). Staggered
// arrival stretches the collective and can shift the optimal algorithm.
func BenchmarkAblation_ArrivalPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, imb := range []float64{0, 0.25, 0.5} {
			spec := bench.MicroSpec{
				Platform: plat(b, "crill"), Procs: 16, MsgSize: 64 * 1024, Op: bench.OpIalltoall,
				ComputePerIter: 5e-3, Iterations: 10, ProgressCalls: 4, Seed: 17, Imbalance: imb,
			}
			r, err := bench.RunFixed(spec, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.PerIter*1e3, "vms_imb"+itoa(int(imb*100)))
		}
	}
}

// Ablation 7 (negative result the Timer design prevents): self-timing the
// Init..Wait interval instead of timing the whole region. This microbenchmark
// demonstrates the measurement machinery itself; see
// core.Request documentation.
func BenchmarkAblation_SelectorOverhead(b *testing.B) {
	// Pure selector-machinery throughput, no simulation.
	fs := &core.FunctionSet{Name: "synthetic"}
	for i := 0; i < 8; i++ {
		fs.Fns = append(fs.Fns, &core.Function{Name: "f" + itoa(i), Start: func() core.Started { return nil }})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := core.NewBruteForceWithScore(len(fs.Fns), 3, stats.Mean)
		for {
			fn, done := sel.Next()
			if done {
				break
			}
			sel.Record(fn, float64(fn))
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
