package nbctune_test

// Cross-stack integration tests: scenarios that exercise the whole pipeline
// (sim -> netmodel -> mpi -> nbc -> core -> bench) rather than one layer.

import (
	"path/filepath"
	"testing"

	"nbctune/internal/bench"
	"nbctune/internal/core"
	"nbctune/internal/fft"
	"nbctune/internal/mpi"
	"nbctune/internal/platform"
	"nbctune/internal/sim"
)

// TestIntegration_PutPrimitiveWinsWhenProgressStarved drives the paper's
// proposed primitive attribute end to end: with rendezvous-sized blocks and
// a single progress call right before the wait, the two-sided algorithms
// cannot complete their handshakes during compute, while the one-sided
// linear variant flows autonomously on RDMA. ADCL must discover this.
func TestIntegration_PutPrimitiveWinsWhenProgressStarved(t *testing.T) {
	plat, err := platform.ByName("crill")
	if err != nil {
		t.Fatal(err)
	}
	const np = 8
	const msg = 256 * 1024
	eng, world, err := plat.NewWorld(np, 5)
	if err != nil {
		t.Fatal(err)
	}
	var winner string
	world.Start(func(c *mpi.Comm) {
		fs := core.IalltoallPrimitivesSet(c, mpi.Virtual(np*msg), mpi.Virtual(np*msg))
		req := core.MustRequest(fs, core.NewBruteForce(len(fs.Fns), 3), c.Now)
		timer := core.MustTimer(c.Now, req)
		for it := 0; it < 25; it++ {
			timer.Start()
			req.Init()
			c.Compute(30e-3) // no progress calls during compute
			req.Progress()   // a single call right before the wait
			req.Wait()
			core.StopMaybeSynced(c, timer, req)
		}
		if c.Rank() == 0 {
			winner = req.Winner().Name
		}
	})
	eng.Run()
	if winner != "ialltoall-linear-put" {
		t.Fatalf("winner = %q, expected the one-sided linear algorithm in a progress-starved regime", winner)
	}
}

// TestIntegration_HistoryAcrossSimulatedRuns exercises ADCL's historic
// learning across two independent simulations (two "application runs").
func TestIntegration_HistoryAcrossSimulatedRuns(t *testing.T) {
	histPath := filepath.Join(t.TempDir(), "hist.json")
	plat, err := platform.ByName("whale")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (winner string, evals int) {
		hist, err := core.LoadHistory(histPath)
		if err != nil {
			t.Fatal(err)
		}
		key := core.HistoryKey("ialltoall", plat.Name, 8, 64*1024)
		eng, world, err := plat.NewWorld(8, 9)
		if err != nil {
			t.Fatal(err)
		}
		world.Start(func(c *mpi.Comm) {
			fs := core.IalltoallSet(c, mpi.Virtual(8*64*1024), mpi.Virtual(8*64*1024), false)
			sel, _ := core.SelectorWithHistory(hist, key, fs, core.NewBruteForce(len(fs.Fns), 4))
			req := core.MustRequest(fs, sel, c.Now)
			timer := core.MustTimer(c.Now, req)
			for it := 0; it < 20; it++ {
				timer.Start()
				req.Init()
				for k := 0; k < 4; k++ {
					c.Compute(2e-3)
					req.Progress()
				}
				req.Wait()
				core.StopMaybeSynced(c, timer, req)
			}
			if c.Rank() == 0 {
				winner = req.Winner().Name
				evals = req.Selector().Evals()
			}
		})
		eng.Run()
		hist.Record(key, core.HistoryEntry{Winner: winner, Evals: evals})
		if err := hist.Save(histPath); err != nil {
			t.Fatal(err)
		}
		return winner, evals
	}
	w1, e1 := run()
	w2, e2 := run()
	if w1 != w2 {
		t.Fatalf("winners differ across runs: %q vs %q", w1, w2)
	}
	if e1 == 0 {
		t.Fatal("first run should have learned")
	}
	if e2 != 0 {
		t.Fatalf("second run consumed %d evals; history should have skipped learning", e2)
	}
}

// TestIntegration_VerificationDeterministic: the whole verification pipeline
// is reproducible bit-for-bit for a fixed seed.
func TestIntegration_VerificationDeterministic(t *testing.T) {
	plat, err := platform.ByName("crill")
	if err != nil {
		t.Fatal(err)
	}
	spec := bench.MicroSpec{
		Platform: plat, Procs: 8, MsgSize: 64 * 1024, Op: bench.OpIalltoall,
		ComputePerIter: 5e-3, Iterations: 15, ProgressCalls: 3, Seed: 77, EvalsPerFn: 2,
	}
	v1, err := bench.RunVerification(spec, "brute-force")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := bench.RunVerification(spec, "brute-force")
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1.Fixed {
		if v1.Fixed[i].Total != v2.Fixed[i].Total {
			t.Fatalf("fixed run %d differs: %g vs %g", i, v1.Fixed[i].Total, v2.Fixed[i].Total)
		}
	}
	if v1.ADCL[0].Total != v2.ADCL[0].Total || v1.ADCL[0].Winner != v2.ADCL[0].Winner {
		t.Fatal("ADCL run not deterministic")
	}
}

// TestIntegration_TraceObservesRendezvous: attach a trace and check the
// library's protocol transitions are visible.
func TestIntegration_TraceObservesRendezvous(t *testing.T) {
	plat, err := platform.ByName("whale")
	if err != nil {
		t.Fatal(err)
	}
	eng, world, err := plat.NewWorld(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := sim.NewTrace(eng, 10000)
	world.Start(func(c *mpi.Comm) {
		c.Alltoall(mpi.Virtual(4*64*1024), mpi.Virtual(4*64*1024)) // rendezvous-sized blocking alltoall
	})
	eng.Run()
	sends := tr.Filter("isend")
	bulks := tr.Filter("bulk-done")
	if len(sends) != 4*3 {
		t.Fatalf("traced %d isends, want 12", len(sends))
	}
	if len(bulks) != 4*3 {
		t.Fatalf("traced %d bulk completions, want 12", len(bulks))
	}
	// Every bulk completion happens after the first send.
	for _, b := range bulks {
		if b.T < sends[0].T {
			t.Fatal("bulk completion precedes first isend")
		}
	}
}

// TestIntegration_FFTFlavorsConsistentTimes: for one scenario, every flavor
// produces a positive, finite, deterministic virtual time, and the ADCL
// flavors decide.
func TestIntegration_FFTFlavorsConsistentTimes(t *testing.T) {
	plat, err := platform.ByName("bgp")
	if err != nil {
		t.Fatal(err)
	}
	spec := bench.FFTSpec{
		Platform: plat, Procs: 16, N: 64, Pattern: fft.WindowTiled,
		Iterations: 12, Seed: 13, EvalsPerFn: 1,
	}
	rs, err := bench.FFTComparison(spec, fft.FlavorMPI, fft.FlavorNBC, fft.FlavorADCL, fft.FlavorADCLExt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Total <= 0 {
			t.Fatalf("%s: nonpositive total", r.Label)
		}
	}
	if rs[2].Winner == "" || rs[3].Winner == "" {
		t.Fatal("ADCL flavors did not decide")
	}
	// The extended set includes everything the plain set has, so its winner
	// should never be *slower* than the plain set's in steady state.
	if rs[3].PostLearnPerIter > rs[2].PostLearnPerIter*1.05 {
		t.Fatalf("extended set post-learning %.4g worse than plain %.4g",
			rs[3].PostLearnPerIter, rs[2].PostLearnPerIter)
	}
}

// TestIntegration_SweepMachinery: tiny sweeps produce sane aggregates.
func TestIntegration_SweepMachinery(t *testing.T) {
	plat, err := platform.ByName("crill")
	if err != nil {
		t.Fatal(err)
	}
	specs := []bench.MicroSpec{{
		Platform: plat, Procs: 8, MsgSize: 128 * 1024, Op: bench.OpIalltoall,
		ComputePerIter: 2e-2, Iterations: 14, ProgressCalls: 5, Seed: 3, EvalsPerFn: 3,
	}}
	st, err := bench.VerificationSweep(specs, []string{"brute-force", "attr-heuristic"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range st.Selectors {
		if r := st.Rate(sel); r < 0 || r > 1 {
			t.Fatalf("%s rate = %g", sel, r)
		}
	}
}
